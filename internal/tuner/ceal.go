package tuner

import (
	"math/rand/v2"

	"ceal/internal/acm"
	"ceal/internal/cfgspace"
	"ceal/internal/metrics"
	"ceal/internal/tuner/events"
)

// CEALOptions are Algorithm 1's hyper-parameters, expressed as budget
// fractions (§6, §7.6).
type CEALOptions struct {
	// Iterations is I, the number of refinement iterations.
	Iterations int
	// RandomFrac is m0/m, the cap on random workflow samples.
	RandomFrac float64
	// ComponentFrac is mR/m, the budget share spent measuring components
	// standalone. Ignored (treated as 0) when the problem has full
	// historical component measurements.
	ComponentFrac float64
	// DisableSwitch keeps evaluating configurations with the low-fidelity
	// model for the whole run (ablation of the model-switch detector).
	DisableSwitch bool
	// DisableBiasEscape turns off the dynamic random-sample top-up of
	// Alg. 1 lines 20–22 (ablation).
	DisableBiasEscape bool
}

// DefaultCEALOptions returns settings tuned on this repository's simulated
// substrate, following the paper's guidance (§6: m0 ≈ 15% of m without
// histories, ≈ 35% with; mR between 25% and 75% of m) and its practice of
// selecting the best hyper-parameters per algorithm (§7.3).
func DefaultCEALOptions(hasHistory bool) CEALOptions {
	if hasHistory {
		return CEALOptions{Iterations: 3, RandomFrac: 0.35, ComponentFrac: 0}
	}
	return CEALOptions{Iterations: 8, RandomFrac: 0.15, ComponentFrac: 0.3}
}

// CEAL is Component-based Ensemble Active Learning (Algorithm 1): Phase 1
// builds per-component models and combines them into the white-box
// low-fidelity model; Phase 2 trains the boosted-tree high-fidelity model
// on configurations ranked mostly by whichever of the two models the
// switch detector currently trusts.
type CEAL struct {
	Opts *CEALOptions // nil = defaults chosen per problem
}

// NewCEAL returns CEAL with per-problem default options.
func NewCEAL() *CEAL { return &CEAL{} }

// Name returns the algorithm name.
func (*CEAL) Name() string { return "CEAL" }

// Tune implements Algorithm 1. The budget m covers workflow runs and (when
// no history exists) the mR standalone component runs, which the paper
// charges as mR workflow-run equivalents (§6).
//
// The Loop iteration index is offset by one from Algorithm 1's: the
// pseudocode pre-selects the first batch before the loop and measures it at
// i=1, which maps to the engine's seed batch (Iter 0), so engine iteration
// it corresponds to Algorithm 1's i = it+1 and the engine runs I-1
// refinement iterations.
func (c *CEAL) Tune(p *Problem, budget int) (*Result, error) {
	// Warm component coverage counts like full histories: Phase-1 models
	// train on prior standalone runs, so no fresh mR is charged.
	useHistory := p.hasHistory() || p.warmCoversComponents()
	opts := DefaultCEALOptions(useHistory)
	if c.Opts != nil {
		opts = *c.Opts
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	s := &cealStrategy{opts: opts, useHistory: useHistory}
	loop := &Loop{
		Algorithm:  "CEAL",
		Salt:       saltCEAL,
		Iterations: opts.Iterations - 1,
		Seeder:     s,
		Selector:   s,
		Modeler:    s,
		Controller: s,
	}
	return loop.Run(p, budget)
}

// cealStrategy carries Algorithm 1's Phase-2 state across loop callbacks.
type cealStrategy struct {
	opts       CEALOptions
	useHistory bool

	lowFi *acm.LowFidelity
	high  *Surrogate

	// Budget split (Alg. 1 line 8): m0 is the random reserve, m0used how
	// much of it is spent, mB the per-iteration top-pick batch size.
	m0     int
	m0used int
	mB     int

	// warmed records that M_H was pre-trained on prior-run samples, which
	// makes it a usable seed-batch ranker before any fresh measurement.
	warmed bool

	usingHigh bool
	// holdout accumulates samples the current M_H has NOT been trained on;
	// the switch detector compares the two models out-of-sample (otherwise
	// M_H, evaluated on its own training data, would win trivially).
	holdout []Sample
	// pendingExtra queues the bias-escape random top-up (Alg. 1 lines
	// 20–22) for the next batch, ahead of the model's top picks.
	pendingExtra []cfgspace.Config
}

const minHoldout = 3

func (s *cealStrategy) Bootstrap(st *State) ([][]Sample, error) {
	p := st.Problem
	budget := st.Budget
	mR := 0
	if !s.useHistory {
		mR = int(s.opts.ComponentFrac*float64(budget) + 0.5)
		if mR >= budget {
			mR = budget - 2
		}
		if mR < 0 {
			mR = 0
		}
	}
	s.m0 = int(s.opts.RandomFrac*float64(budget) + 0.5)
	if s.m0 < 2 {
		s.m0 = 2
	}
	if s.m0 > budget-mR {
		s.m0 = budget - mR
	}
	st.Budget = budget - mR // workflow runs available

	// Phase 1: component models -> low-fidelity model M_L (lines 1–6).
	cm, err := trainComponentModels(p, mR, st.Rng)
	if err != nil {
		return nil, err
	}
	s.lowFi = cm.lowFi
	s.high = newSurrogate(p) // M_H, line 12
	return cm.newSamples, nil
}

func (s *cealStrategy) SeedBatch(st *State) ([]cfgspace.Config, error) {
	s.m0used = s.m0 / 2
	if s.m0used < 1 {
		s.m0used = 1
	}
	pending := st.Tracker.takeRandom(s.m0used, st.Rng) // line 7

	s.mB = (st.Budget - s.m0) / s.opts.Iterations // line 8
	if s.mB < 1 {
		s.mB = 1
	}
	room := capBatch(s.mB, st.Budget, len(pending), 0)
	scorer := st.Problem.lowFiScorer(s.lowFi)
	if s.warmed {
		// Warm start: the seed batch's top picks already come from the
		// prior-trained high-fidelity surrogate instead of the white-box
		// model — this is where transfer learning pays for itself, by
		// spending the very first measurements near prior optima. The
		// switch detector still arbitrates between the models afterwards.
		scorer = s.high.poolScorer(st.Problem)
	}
	return append(pending, st.Tracker.takeTop(room, scorer)...), nil // lines 9–10
}

// WarmStart pre-trains the high-fidelity surrogate on prior-run workflow
// samples (st.Prior), set up by the Loop before seeding.
func (s *cealStrategy) WarmStart(st *State) error {
	if err := s.high.Train(st.Prior); err != nil {
		return err
	}
	s.warmed = true
	return nil
}

// AfterMeasure is Algorithm 1's lines 16–24, run right after each batch is
// measured: the out-of-sample switch check and the bias-escape top-up. The
// current pseudocode iteration is i = st.Iter + 1.
func (s *cealStrategy) AfterMeasure(st *State, batch []Sample) {
	if s.usingHigh || !s.high.Trained() {
		return
	}
	i := st.Iter + 1
	I := s.opts.Iterations
	p := st.Problem

	s.holdout = append(s.holdout, batch...)
	if len(s.holdout) < minHoldout {
		return
	}
	truth := make([]float64, len(s.holdout))
	cfgs := make([]cfgspace.Config, len(s.holdout))
	for k, smp := range s.holdout {
		truth[k] = smp.Value
		cfgs[k] = smp.Cfg
	}
	highScores := s.high.PredictBatch(cfgs)
	lowScores := s.lowFi.ScoreBatchOn(p.engine(), cfgs)
	sH := metrics.RecallSum(highScores, truth) // line 18
	sL := metrics.RecallSum(lowScores, truth)  // line 19

	// Bias escape (lines 20–22): if M_H's three favourite held-out
	// configurations are not all within the better-performing half, the
	// sampling so far is suspect — spend part of the random reserve.
	if !s.opts.DisableBiasEscape && s.m0used < s.m0 && biased(highScores, truth) {
		add := (s.m0 - s.m0used) / 2
		if add > 0 && len(st.Samples)+add <= st.Budget {
			s.pendingExtra = append(s.pendingExtra, st.Tracker.takeRandom(add, st.Rng)...)
			s.m0used += add
			if st.Observing() {
				st.Emit(&events.BiasEscape{Iteration: st.Iter, Added: add})
			}
		}
	}
	switched := !s.opts.DisableSwitch && sH >= sL
	if st.Observing() {
		st.Emit(&events.SwitchDecision{Iteration: st.Iter, HighRecall: sH, LowRecall: sL, Switched: switched})
	}
	if switched { // lines 23–24
		s.usingHigh = true
		st.SwitchIter = i - 1
		if I > i {
			s.mB += (s.m0 - s.m0used) / (I - i)
		}
	}
	s.holdout = s.holdout[:0]
}

// SelectBatch is Algorithm 1's lines 26–27 at the end of pseudocode
// iteration i = st.Iter: rank the remaining pool with whichever model is
// trusted and top up with any queued bias-escape randoms.
func (s *cealStrategy) SelectBatch(st *State) ([]cfgspace.Config, error) {
	p := st.Problem
	scorer := p.lowFiScorer(s.lowFi) // line 26
	if s.usingHigh {
		scorer = s.high.poolScorer(p)
	}
	want := s.mB
	if st.Iter == s.opts.Iterations-1 {
		// Final selection: flush whatever workflow budget remains
		// (integer division of mB would otherwise strand runs).
		want = st.Budget
	}
	room := capBatch(want, st.Budget, len(st.Samples), len(s.pendingExtra))
	pending := append(s.pendingExtra, st.Tracker.takeTop(room, scorer)...) // line 27
	s.pendingExtra = nil
	return pending, nil
}

func (s *cealStrategy) Fit(st *State, _ []Sample) (bool, error) {
	return true, s.high.Train(st.TrainingSamples()) // line 25
}

// ModelRounds reports the high-fidelity surrogate's boosting rounds.
func (s *cealStrategy) ModelRounds() int { return s.high.Rounds() }

func (s *cealStrategy) FinalScores(st *State) ([]float64, error) {
	return s.high.PredictPoolInto(st.Problem.Pool, st.finalScoreBuf()), nil
}

func (s *cealStrategy) FinalImportance(st *State) []float64 {
	p := st.Problem
	return s.high.Importance(len(p.features(p.Pool[0])))
}

// capBatch limits a batch to the workflow-run budget still available.
func capBatch(want, budget, used, queued int) int {
	room := budget - used - queued
	if want > room {
		want = room
	}
	if want < 0 {
		want = 0
	}
	return want
}

// biased reports whether the high-fidelity model's top-3 measured
// configurations fail to all sit in the better half of the measured truth
// (Alg. 1 line 20).
func biased(highScores, truth []float64) bool {
	top3 := metrics.TopIndices(3, highScores)
	half := metrics.TopIndices((len(truth)+1)/2, truth)
	inHalf := make(map[int]bool, len(half))
	for _, i := range half {
		inHalf[i] = true
	}
	for _, i := range top3 {
		if !inHalf[i] {
			return true
		}
	}
	return false
}

// LowFidelityScores exposes the Phase-1 white-box model scores over a set
// of configurations without running Phase 2 — used by the Fig. 4
// experiment and the combiner ablation.
func LowFidelityScores(p *Problem, mR int, cfgs []cfgspace.Config) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, saltCEAL))
	cm, err := trainComponentModels(p, mR, rng)
	if err != nil {
		return nil, err
	}
	return cm.lowFi.ScoreBatchOn(p.engine(), cfgs), nil
}
