package tuner

import (
	"math/rand/v2"

	"ceal/internal/cfgspace"
	"ceal/internal/metrics"
)

// CEALOptions are Algorithm 1's hyper-parameters, expressed as budget
// fractions (§6, §7.6).
type CEALOptions struct {
	// Iterations is I, the number of refinement iterations.
	Iterations int
	// RandomFrac is m0/m, the cap on random workflow samples.
	RandomFrac float64
	// ComponentFrac is mR/m, the budget share spent measuring components
	// standalone. Ignored (treated as 0) when the problem has full
	// historical component measurements.
	ComponentFrac float64
	// DisableSwitch keeps evaluating configurations with the low-fidelity
	// model for the whole run (ablation of the model-switch detector).
	DisableSwitch bool
	// DisableBiasEscape turns off the dynamic random-sample top-up of
	// Alg. 1 lines 20–22 (ablation).
	DisableBiasEscape bool
}

// DefaultCEALOptions returns settings tuned on this repository's simulated
// substrate, following the paper's guidance (§6: m0 ≈ 15% of m without
// histories, ≈ 35% with; mR between 25% and 75% of m) and its practice of
// selecting the best hyper-parameters per algorithm (§7.3).
func DefaultCEALOptions(hasHistory bool) CEALOptions {
	if hasHistory {
		return CEALOptions{Iterations: 3, RandomFrac: 0.35, ComponentFrac: 0}
	}
	return CEALOptions{Iterations: 8, RandomFrac: 0.15, ComponentFrac: 0.3}
}

// CEAL is Component-based Ensemble Active Learning (Algorithm 1): Phase 1
// builds per-component models and combines them into the white-box
// low-fidelity model; Phase 2 trains the boosted-tree high-fidelity model
// on configurations ranked mostly by whichever of the two models the
// switch detector currently trusts.
type CEAL struct {
	Opts *CEALOptions // nil = defaults chosen per problem
}

// NewCEAL returns CEAL with per-problem default options.
func NewCEAL() *CEAL { return &CEAL{} }

// Name returns the algorithm name.
func (*CEAL) Name() string { return "CEAL" }

// Tune implements Algorithm 1. The budget m covers workflow runs and (when
// no history exists) the mR standalone component runs, which the paper
// charges as mR workflow-run equivalents (§6).
func (c *CEAL) Tune(p *Problem, budget int) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	useHistory := p.hasHistory()
	opts := DefaultCEALOptions(useHistory)
	if c.Opts != nil {
		opts = *c.Opts
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	rng := rand.New(rand.NewPCG(p.Seed, saltCEAL))

	// Budget split (Alg. 1 line 8): mR to components, m0 reserved for
	// random workflow samples, the rest to I batches of top picks.
	mR := 0
	if !useHistory {
		mR = int(opts.ComponentFrac*float64(budget) + 0.5)
		if mR >= budget {
			mR = budget - 2
		}
		if mR < 0 {
			mR = 0
		}
	}
	m0 := int(opts.RandomFrac*float64(budget) + 0.5)
	if m0 < 2 {
		m0 = 2
	}
	if m0 > budget-mR {
		m0 = budget - mR
	}
	workBudget := budget - mR // workflow runs available
	I := opts.Iterations

	// Phase 1: component models -> low-fidelity model M_L (lines 1–6).
	cm, err := trainComponentModels(p, mR, rng)
	if err != nil {
		return nil, err
	}
	lowFi := cm.lowFi

	// Phase 2 (lines 7–27).
	tracker := newPoolTracker(p)
	m0used := m0 / 2
	if m0used < 1 {
		m0used = 1
	}
	pending := tracker.takeRandom(m0used, rng) // line 7

	mB := (workBudget - m0) / I // line 8
	if mB < 1 {
		mB = 1
	}
	pending = append(pending, tracker.takeTop(capBatch(mB, workBudget, len(pending), 0), p.lowFiScorer(lowFi))...) // lines 9–10

	high := newSurrogate(p) // M_H, line 12
	usingHigh := false      // M = M_L, line 11
	switchIter := -1
	var measured []Sample

	// holdout accumulates samples the current M_H has NOT been trained on;
	// the switch detector compares the two models out-of-sample (otherwise
	// M_H, evaluated on its own training data, would win trivially).
	var holdout []Sample
	const minHoldout = 3

	for i := 1; i <= I; i++ { // line 13
		batch, err := measureBatch(p, pending) // line 14
		if err != nil {
			return nil, err
		}
		measured = append(measured, batch...)
		pending = nil // line 15

		if !usingHigh && high.Trained() { // lines 16–24
			holdout = append(holdout, batch...)
			if len(holdout) >= minHoldout {
				truth := make([]float64, len(holdout))
				cfgs := make([]cfgspace.Config, len(holdout))
				for k, s := range holdout {
					truth[k] = s.Value
					cfgs[k] = s.Cfg
				}
				highScores := high.PredictBatch(cfgs)
				lowScores := lowFi.ScoreBatchOn(p.engine(), cfgs)
				sH := metrics.RecallSum(highScores, truth) // line 18
				sL := metrics.RecallSum(lowScores, truth)  // line 19

				// Bias escape (lines 20–22): if M_H's three favourite
				// held-out configurations are not all within the
				// better-performing half, the sampling so far is suspect —
				// spend part of the random reserve.
				if !opts.DisableBiasEscape && m0used < m0 && biased(highScores, truth) {
					add := (m0 - m0used) / 2
					if add > 0 && len(measured)+add <= workBudget {
						pending = append(pending, tracker.takeRandom(add, rng)...)
						m0used += add
					}
				}
				if !opts.DisableSwitch && sH >= sL { // lines 23–24
					usingHigh = true
					switchIter = i - 1
					if I > i {
						mB += (m0 - m0used) / (I - i)
					}
				}
				holdout = holdout[:0]
			}
		}

		if err := high.Train(measured); err != nil { // line 25
			return nil, err
		}
		if i == I {
			break
		}
		scorer := p.lowFiScorer(lowFi) // line 26
		if usingHigh {
			scorer = high.poolScorer(p)
		}
		want := mB
		if i == I-1 {
			// Final selection: flush whatever workflow budget remains
			// (integer division of mB would otherwise strand runs).
			want = workBudget
		}
		room := capBatch(want, workBudget, len(measured), len(pending))
		pending = append(pending, tracker.takeTop(room, scorer)...) // line 27
		if len(pending) == 0 {
			break // budget exhausted
		}
	}

	res := finish(p, high.PredictPool(p.Pool), measured, cm.newSamples, switchIter)
	res.Importance = high.Importance(len(p.features(p.Pool[0])))
	return res, nil
}

// capBatch limits a batch to the workflow-run budget still available.
func capBatch(want, budget, used, queued int) int {
	room := budget - used - queued
	if want > room {
		want = room
	}
	if want < 0 {
		want = 0
	}
	return want
}

// biased reports whether the high-fidelity model's top-3 measured
// configurations fail to all sit in the better half of the measured truth
// (Alg. 1 line 20).
func biased(highScores, truth []float64) bool {
	top3 := metrics.TopIndices(3, highScores)
	half := metrics.TopIndices((len(truth)+1)/2, truth)
	inHalf := make(map[int]bool, len(half))
	for _, i := range half {
		inHalf[i] = true
	}
	for _, i := range top3 {
		if !inHalf[i] {
			return true
		}
	}
	return false
}

// LowFidelityScores exposes the Phase-1 white-box model scores over a set
// of configurations without running Phase 2 — used by the Fig. 4
// experiment and the combiner ablation.
func LowFidelityScores(p *Problem, mR int, cfgs []cfgspace.Config) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, saltCEAL))
	cm, err := trainComponentModels(p, mR, rng)
	if err != nil {
		return nil, err
	}
	return cm.lowFi.ScoreBatchOn(p.engine(), cfgs), nil
}
