package tuner

import (
	"ceal/internal/emews"
	"math"
	"math/rand/v2"
	"testing"

	"ceal/internal/acm"
	"ceal/internal/cfgspace"
	"ceal/internal/metrics"
)

// synthEval is a deterministic analytic stand-in for the workflow
// simulator: two components whose solo times follow simple scaling laws,
// coupled as their max times a coupling distortion that solo measurements
// cannot see.
type synthEval struct {
	dims []int
}

func (e *synthEval) componentTime(j int, cfg cfgspace.Config) float64 {
	work := []float64{200.0, 60.0}[j]
	a, b := float64(cfg[0]), float64(cfg[1])
	return work/a + 0.05*b + 0.02*math.Sqrt(a)
}

func (e *synthEval) MeasureWorkflow(cfg cfgspace.Config) (float64, error) {
	t1 := e.componentTime(0, cfg[:2])
	t2 := e.componentTime(1, cfg[2:])
	// Coupling: synchronization pushes the makespan above the pure max,
	// more so when the two components are imbalanced.
	imbalance := math.Abs(t1-t2) / (t1 + t2)
	return math.Max(t1, t2) * (1 + 0.3*imbalance), nil
}

func (e *synthEval) MeasureComponent(j int, cfg cfgspace.Config) (float64, error) {
	if cfg == nil {
		return 1.0, nil
	}
	return e.componentTime(j, cfg), nil
}

func synthProblem(seed uint64, poolSize int) *Problem {
	comp := func() *cfgspace.Space {
		return &cfgspace.Space{Params: []cfgspace.Param{
			cfgspace.NewParam("a", 2, 50),
			cfgspace.NewParam("b", 1, 10),
		}}
	}
	c1, c2 := comp(), comp()
	space := cfgspace.Concat(nil,
		cfgspace.NamedSpace{Name: "sim", Space: c1},
		cfgspace.NamedSpace{Name: "viz", Space: c2},
	)
	rng := rand.New(rand.NewPCG(seed, 100))
	pool := space.SampleN(rng, poolSize)
	return &Problem{
		Name:  "synthetic",
		Space: space,
		Components: []ComponentInfo{
			{Name: "sim", Space: c1},
			{Name: "viz", Space: c2},
		},
		Pool:     pool,
		Eval:     &synthEval{dims: []int{2, 2}},
		Combiner: acm.Max,
		Seed:     seed,
	}
}

// trueValues looks up the exact metric for every pool configuration.
func trueValues(p *Problem) []float64 {
	out := make([]float64, len(p.Pool))
	for i, cfg := range p.Pool {
		out[i], _ = p.Eval.MeasureWorkflow(cfg)
	}
	return out
}

func allAlgorithms() []Algorithm {
	return []Algorithm{RS{}, NewAL(), NewGEIST(), NewALpH(), NewCEAL(), NewBO(), NewHyBoost(), NewKNNSelect()}
}

func TestAlgorithmsRespectBudget(t *testing.T) {
	const budget = 24
	for _, alg := range allAlgorithms() {
		p := synthProblem(1, 300)
		res, err := alg.Tune(p, budget)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		workflowRuns := len(res.Samples)
		compRuns := 0
		for _, cs := range res.ComponentSamples {
			if len(cs) > compRuns {
				compRuns = len(cs) // mR equivalents = runs per component
			}
		}
		if workflowRuns+compRuns > budget {
			t.Errorf("%s: %d workflow + %d component-equivalents exceeds budget %d",
				alg.Name(), workflowRuns, compRuns, budget)
		}
		if workflowRuns == 0 {
			t.Errorf("%s: no workflow samples measured", alg.Name())
		}
		if len(res.PoolScores) != len(p.Pool) {
			t.Errorf("%s: PoolScores has %d entries, pool has %d", alg.Name(), len(res.PoolScores), len(p.Pool))
		}
		if res.CollectionCost <= 0 {
			t.Errorf("%s: CollectionCost = %v", alg.Name(), res.CollectionCost)
		}
		if !p.Space.IsValid(res.Best) {
			t.Errorf("%s: Best %v is not a valid configuration", alg.Name(), res.Best)
		}
	}
}

func TestAlgorithmsDeterministicBySeed(t *testing.T) {
	for _, alg := range allAlgorithms() {
		r1, err := alg.Tune(synthProblem(7, 200), 20)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		r2, err := alg.Tune(synthProblem(7, 200), 20)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if r1.Best.Key() != r2.Best.Key() {
			t.Errorf("%s: same seed gave Best %v vs %v", alg.Name(), r1.Best, r2.Best)
		}
		if len(r1.Samples) != len(r2.Samples) {
			t.Errorf("%s: same seed measured %d vs %d samples", alg.Name(), len(r1.Samples), len(r2.Samples))
		}
	}
}

func TestBestPredictedIsGood(t *testing.T) {
	// With a healthy budget every algorithm should land in the good region;
	// this guards against rank inversions (e.g. maximizing instead of
	// minimizing).
	for _, alg := range allAlgorithms() {
		p := synthProblem(3, 400)
		truth := trueValues(p)
		best := truth[metrics.TopIndices(1, truth)[0]]
		res, err := alg.Tune(p, 60)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		got, _ := p.Eval.MeasureWorkflow(res.Best)
		if got > best*2.0 {
			t.Errorf("%s: best predicted config has %.3f, pool best is %.3f", alg.Name(), got, best)
		}
	}
}

func TestCEALBeatsRSWithTinyBudget(t *testing.T) {
	// The paper's headline: under a tight budget CEAL finds better
	// configurations than random sampling. Averaged over replications to
	// be robust.
	const budget = 16
	const reps = 12
	var cealSum, rsSum float64
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		pc := synthProblem(seed, 300)
		rc, err := NewCEAL().Tune(pc, budget)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := pc.Eval.MeasureWorkflow(rc.Best)
		cealSum += v

		pr := synthProblem(seed, 300)
		rr, err := RS{}.Tune(pr, budget)
		if err != nil {
			t.Fatal(err)
		}
		v, _ = pr.Eval.MeasureWorkflow(rr.Best)
		rsSum += v
	}
	if cealSum >= rsSum {
		t.Errorf("CEAL mean %.3f not better than RS mean %.3f over %d reps", cealSum/reps, rsSum/reps, reps)
	}
}

func TestCEALSwitchesWithLargeBudget(t *testing.T) {
	p := synthProblem(5, 400)
	opts := DefaultCEALOptions(false)
	res, err := (&CEAL{Opts: &opts}).Tune(p, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchIteration < 0 {
		t.Error("CEAL never switched to the high-fidelity model despite a large budget")
	}
}

func TestCEALWithHistorySkipsComponentRuns(t *testing.T) {
	p := synthProblem(9, 300)
	// Provide 100 historical solo measurements per component.
	rng := rand.New(rand.NewPCG(9, 200))
	p.History = make([][]Sample, len(p.Components))
	for j, c := range p.Components {
		for _, cfg := range c.Space.SampleN(rng, 100) {
			v, _ := p.Eval.MeasureComponent(j, cfg)
			p.History[j] = append(p.History[j], Sample{Cfg: cfg, Value: v})
		}
	}
	res, err := NewCEAL().Tune(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j, cs := range res.ComponentSamples {
		if len(cs) != 0 {
			t.Errorf("component %d: %d fresh solo runs despite history", j, len(cs))
		}
	}
	// All 20 budget units go to workflow runs.
	if len(res.Samples) < 15 {
		t.Errorf("only %d workflow samples with history available", len(res.Samples))
	}
}

func TestLowFidelityScoresRankWell(t *testing.T) {
	p := synthProblem(11, 500)
	scores, err := LowFidelityScores(p, 60, p.Pool)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueValues(p)
	// Fig. 4's claim: the white-box combination ranks far better than
	// chance. Random recall at n=25 over 500 is ~5%.
	if rs := metrics.RecallScore(25, scores, truth); rs < 20 {
		t.Errorf("low-fidelity top-25 recall = %v%%, want clearly above chance", rs)
	}
}

func TestPoolTrackerTakeTop(t *testing.T) {
	p := synthProblem(13, 50)
	tr := newPoolTracker(p, newRunArena())
	truth := trueValues(p)
	score := p.scoreByConfig(func(cfg cfgspace.Config) float64 {
		v, _ := p.Eval.MeasureWorkflow(cfg)
		return v
	})
	got := tr.takeTop(3, score)
	want := metrics.TopIndices(3, truth)
	for i := range got {
		if got[i].Key() != p.Pool[want[i]].Key() {
			t.Fatalf("takeTop[%d] = %v, want %v", i, got[i], p.Pool[want[i]])
		}
	}
	if tr.left() != 47 {
		t.Fatalf("tracker left = %d, want 47", tr.left())
	}
	// Taking again must not return duplicates.
	again := tr.takeTop(3, score)
	for _, cfg := range again {
		for _, prev := range got {
			if cfg.Key() == prev.Key() {
				t.Fatalf("takeTop returned duplicate %v", cfg)
			}
		}
	}
}

func TestPoolTrackerTakeRandomExhausts(t *testing.T) {
	p := synthProblem(15, 10)
	tr := newPoolTracker(p, newRunArena())
	rng := rand.New(rand.NewPCG(1, 1))
	got := tr.takeRandom(25, rng)
	if len(got) != 10 || tr.left() != 0 {
		t.Fatalf("takeRandom drained %d, left %d", len(got), tr.left())
	}
	seen := map[string]bool{}
	for _, cfg := range got {
		if seen[cfg.Key()] {
			t.Fatalf("duplicate %v", cfg)
		}
		seen[cfg.Key()] = true
	}
}

func TestBiasedDetector(t *testing.T) {
	// Model ranks sample 0,1,2 best; truth agrees -> not biased.
	scores := []float64{1, 2, 3, 10, 11, 12}
	truth := []float64{1, 2, 3, 10, 11, 12}
	if biased(scores, truth) {
		t.Error("aligned model flagged as biased")
	}
	// Model's favourites are actually the worst -> biased.
	flipped := []float64{12, 11, 10, 3, 2, 1}
	if !biased(scores, flipped) {
		t.Error("inverted model not flagged as biased")
	}
}

func TestCapBatch(t *testing.T) {
	if capBatch(10, 20, 15, 2) != 3 {
		t.Fatal("capBatch should leave room for budget")
	}
	if capBatch(2, 20, 15, 2) != 2 {
		t.Fatal("capBatch should not inflate")
	}
	if capBatch(5, 10, 10, 0) != 0 {
		t.Fatal("capBatch should clamp at zero")
	}
}

func TestParameterGraphSymmetricArity(t *testing.T) {
	p := synthProblem(17, 60)
	g := p.parameterGraph(5)
	if len(g) != 60 {
		t.Fatalf("graph size %d", len(g))
	}
	for i, nbrs := range g {
		if len(nbrs) != 5 {
			t.Fatalf("node %d has %d neighbours", i, len(nbrs))
		}
		for _, nb := range nbrs {
			if nb == i {
				t.Fatalf("node %d lists itself as neighbour", i)
			}
		}
	}
}

func TestCEALAblationOptionsRun(t *testing.T) {
	for _, opts := range []CEALOptions{
		{Iterations: 4, RandomFrac: 0.2, ComponentFrac: 0.3, DisableSwitch: true},
		{Iterations: 4, RandomFrac: 0.2, ComponentFrac: 0.3, DisableBiasEscape: true},
		{Iterations: 1, RandomFrac: 0.5, ComponentFrac: 0.1},
		{Iterations: 10, RandomFrac: 0.05, ComponentFrac: 0.8},
	} {
		opts := opts
		p := synthProblem(31, 200)
		res, err := (&CEAL{Opts: &opts}).Tune(p, 20)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if opts.DisableSwitch && res.SwitchIteration != -1 {
			t.Errorf("DisableSwitch still switched at %d", res.SwitchIteration)
		}
		if len(res.Samples) == 0 {
			t.Errorf("opts %+v: no samples", opts)
		}
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Zero uncertainty: EI is the plain improvement, clamped at zero.
	if got := expectedImprovement(10, 8, 0); got != 2 {
		t.Fatalf("deterministic EI = %v, want 2", got)
	}
	if got := expectedImprovement(10, 12, 0); got != 0 {
		t.Fatalf("deterministic worse EI = %v, want 0", got)
	}
	// Uncertainty adds value even at equal mean.
	if got := expectedImprovement(10, 10, 1); got <= 0 {
		t.Fatalf("uncertain EI = %v, want > 0", got)
	}
	// EI grows with std at fixed mean.
	if expectedImprovement(10, 11, 2) <= expectedImprovement(10, 11, 0.5) {
		t.Fatal("EI not increasing in std")
	}
}

func TestStdNormHelpers(t *testing.T) {
	if d := stdNormCDF(0) - 0.5; d > 1e-12 || d < -1e-12 {
		t.Fatalf("CDF(0) = %v", stdNormCDF(0))
	}
	if stdNormCDF(5) < 0.999999 || stdNormCDF(-5) > 1e-6 {
		t.Fatal("CDF tails wrong")
	}
	if d := stdNormPDF(0) - 0.3989422804014327; d > 1e-12 || d < -1e-12 {
		t.Fatalf("PDF(0) = %v", stdNormPDF(0))
	}
}

func TestMeasureBatchParallelDeterministic(t *testing.T) {
	// A parallel collector must return identical samples in identical
	// order regardless of worker scheduling.
	mk := func(workers int) []Sample {
		p := synthProblem(23, 150)
		p.Runner = &emews.Runner{Workers: workers, MaxRetries: 2}
		cfgs := p.Pool[:20]
		samples, err := measureBatch(p, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	serial := mk(1)
	parallel := mk(8)
	for i := range serial {
		if serial[i].Cfg.Key() != parallel[i].Cfg.Key() || serial[i].Value != parallel[i].Value {
			t.Fatalf("parallel collector reordered results at %d", i)
		}
	}
}

func TestComponentPoolRestrictsSampling(t *testing.T) {
	p := synthProblem(27, 200)
	// Restrict each component to 10 candidate configurations.
	rng := rand.New(rand.NewPCG(27, 1))
	p.ComponentPool = make([][]cfgspace.Config, len(p.Components))
	allowed := make([]map[string]bool, len(p.Components))
	for j, c := range p.Components {
		p.ComponentPool[j] = c.Space.SampleN(rng, 10)
		allowed[j] = map[string]bool{}
		for _, cfg := range p.ComponentPool[j] {
			allowed[j][cfg.Key()] = true
		}
	}
	res, err := NewCEAL().Tune(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j, cs := range res.ComponentSamples {
		for _, s := range cs {
			if !allowed[j][s.Cfg.Key()] {
				t.Fatalf("component %d measured %v outside its candidate pool", j, s.Cfg)
			}
		}
	}
}

func TestSurrogateLogTargetHandlesScale(t *testing.T) {
	// Targets spanning orders of magnitude: the log-space surrogate must
	// rank a cheap config below an expensive one.
	p := synthProblem(29, 100)
	s := newSurrogate(p)
	samples := []Sample{
		{Cfg: cfgspace.Config{50, 1, 50, 1}, Value: 5},
		{Cfg: cfgspace.Config{2, 10, 2, 10}, Value: 5000},
		{Cfg: cfgspace.Config{45, 2, 45, 2}, Value: 6},
		{Cfg: cfgspace.Config{3, 9, 3, 9}, Value: 4000},
	}
	if err := s.Train(samples); err != nil {
		t.Fatal(err)
	}
	if s.Predict(cfgspace.Config{48, 1, 48, 1}) >= s.Predict(cfgspace.Config{2, 10, 2, 10}) {
		t.Fatal("surrogate failed to separate cheap from expensive region")
	}
}

func TestProblemValidate(t *testing.T) {
	p := synthProblem(19, 10)
	p.Pool = nil
	if _, err := (RS{}).Tune(p, 5); err == nil {
		t.Fatal("empty pool accepted")
	}
	p2 := synthProblem(19, 10)
	p2.Components = p2.Components[:1]
	if _, err := (RS{}).Tune(p2, 5); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}
