//go:build !race

package tuner

import (
	"testing"
)

// TestTakeTopSteadyStateAllocs guards the fused selector's steady state:
// once the run arena is warm, a takeTop pass over a large pool allocates
// only the returned config batch — no score slice, no candidate copy, no
// per-call heap growth. The bound is deliberately loose against the old
// full-materialize path (which allocated O(pool) floats and configs every
// call) but tight enough to catch any regression back to it.
func TestTakeTopSteadyStateAllocs(t *testing.T) {
	const poolN, n = 20000, 16
	p := synthProblem(3, poolN)
	p.Workers = 1 // serial engine: no goroutine-spawn allocations
	tr := newPoolTracker(p, newRunArena())
	scorer := func(idxs []int, out []float64) {
		for j, idx := range idxs {
			out[j] = float64(idx % 97)
		}
	}
	backup := append([]int(nil), tr.remaining...)
	restore := func() {
		tr.remaining = tr.remaining[:len(backup)]
		copy(tr.remaining, backup)
	}
	tr.takeTop(n, scorer) // warm the arena
	restore()

	allocs := testing.AllocsPerRun(50, func() {
		restore()
		tr.takeTop(n, scorer)
	})
	// One alloc for the returned []cfgspace.Config; leave headroom for one
	// more (interface boxing etc.) but nothing pool-sized.
	if allocs > 2 {
		t.Errorf("takeTop steady state: %.1f allocs/run, want <= 2", allocs)
	}
}

// TestFinalScoreBufferReuse guards the arena's pool-score buffer: asking
// twice returns the same backing array (per-iteration FinalScores reuse),
// and the slice survives into a Result without the arena retaining it.
func TestFinalScoreBufferReuse(t *testing.T) {
	a := newRunArena()
	s1 := a.poolScores(500)
	s2 := a.poolScores(500)
	if &s1[0] != &s2[0] {
		t.Error("poolScores reallocated between iterations")
	}
	if len(s2) != 500 {
		t.Errorf("poolScores length %d, want 500", len(s2))
	}
}
