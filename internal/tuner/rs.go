package tuner

import (
	"math/rand/v2"
)

// RS is the random-sampling baseline (§7.3): the whole budget is spent on
// uniformly chosen pool configurations, then one surrogate is trained on
// them.
type RS struct{}

// Name returns the algorithm name.
func (RS) Name() string { return "RS" }

// Tune implements Algorithm.
func (RS) Tune(p *Problem, budget int) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, saltRS))
	tracker := newPoolTracker(p)
	cfgs := tracker.takeRandom(budget, rng)
	samples, err := measureBatch(p, cfgs)
	if err != nil {
		return nil, err
	}
	model := newSurrogate(p)
	if err := model.Train(samples); err != nil {
		return nil, err
	}
	res := finish(p, model.PredictPool(p.Pool), samples, nil, -1)
	res.Importance = model.Importance(len(p.features(p.Pool[0])))
	return res, nil
}

// Distinct salts decorrelate the algorithms' random streams from one
// another while keeping each fully reproducible from Problem.Seed.
const (
	saltRS    = 0x52535253
	saltAL    = 0x414c414c
	saltGEIST = 0x47454953
	saltCEAL  = 0x4345414c
	saltALpH  = 0x414c7048
	saltBO    = 0x424f424f
	saltENS   = 0x454e5345
)
