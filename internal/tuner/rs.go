package tuner

import (
	"ceal/internal/cfgspace"
)

// RS is the random-sampling baseline (§7.3): the whole budget is spent on
// uniformly chosen pool configurations, then one surrogate is trained on
// them.
type RS struct{}

// Name returns the algorithm name.
func (RS) Name() string { return "RS" }

// Tune implements Algorithm.
func (RS) Tune(p *Problem, budget int) (*Result, error) {
	s := &rsStrategy{model: newSurrogate(p)}
	loop := &Loop{Algorithm: "RS", Salt: saltRS, Seeder: s, Modeler: s}
	return loop.Run(p, budget)
}

// rsStrategy spends the whole budget at once and trains a single surrogate.
type rsStrategy struct {
	model *Surrogate
}

func (s *rsStrategy) SeedBatch(st *State) ([]cfgspace.Config, error) {
	return st.Tracker.takeRandom(st.Budget, st.Rng), nil
}

func (s *rsStrategy) Fit(st *State, _ []Sample) (bool, error) {
	return true, s.model.Train(st.Samples)
}

// ModelRounds reports the surrogate's boosting rounds for the trace.
func (s *rsStrategy) ModelRounds() int { return s.model.Rounds() }

func (s *rsStrategy) FinalScores(st *State) ([]float64, error) {
	return s.model.PredictPoolInto(st.Problem.Pool, st.finalScoreBuf()), nil
}

func (s *rsStrategy) FinalImportance(st *State) []float64 {
	p := st.Problem
	return s.model.Importance(len(p.features(p.Pool[0])))
}

// Distinct salts decorrelate the algorithms' random streams from one
// another while keeping each fully reproducible from Problem.Seed.
const (
	saltRS    = 0x52535253
	saltAL    = 0x414c414c
	saltGEIST = 0x47454953
	saltCEAL  = 0x4345414c
	saltALpH  = 0x414c7048
	saltBO    = 0x424f424f
	saltENS   = 0x454e5345
	saltEXH   = 0x45584858
)
