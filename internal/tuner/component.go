package tuner

import (
	"fmt"
	"math/rand/v2"

	"ceal/internal/acm"
	"ceal/internal/cfgspace"
	"ceal/internal/ml/xgb"
)

// componentModels is Phase 1 of the bootstrapping method (Alg. 1, lines
// 1–6): per-component performance models plus the white-box low-fidelity
// combination.
type componentModels struct {
	lowFi *acm.LowFidelity
	// newSamples are the standalone runs measured here (historical data
	// are free and not included), per component.
	newSamples [][]Sample
}

// trainComponentModels builds each component's model from mR fresh solo
// runs plus any historical measurements, and combines them with the
// problem's combiner. Unconfigurable components get a constant predictor
// from one (free) solo measurement.
func trainComponentModels(p *Problem, mR int, rng *rand.Rand) (*componentModels, error) {
	parts := make([]acm.Part, len(p.Components))
	newSamples := make([][]Sample, len(p.Components))
	dims := p.dims()

	// Pass 1, serial: measurement and configuration sampling, in component
	// order — the collector and the rng both have order-dependent state.
	type pendingFit struct {
		j       int
		samples []Sample
	}
	var fits []pendingFit
	for j, comp := range p.Components {
		if comp.Space == nil {
			solo, err := p.Collector().MeasureComponents(p.context(), j, []cfgspace.Config{nil})
			if err != nil {
				return nil, fmt.Errorf("tuner: measure fixed component %s: %w", comp.Name, err)
			}
			part := acm.Part{Name: comp.Name, Predictor: acm.ConstPredictor(solo[0].Value)}
			if comp.Cores != nil {
				part.Cores = func(cfgspace.Config) float64 { return comp.Cores(nil) }
			}
			parts[j] = part
			continue
		}

		var samples []Sample
		if len(p.History) == len(p.Components) {
			samples = append(samples, p.History[j]...)
		}
		if warm := p.warmComponent(j); len(warm) > 0 {
			samples = append(samples, warm...)
		}
		if mR > 0 {
			cfgs := sampleComponentConfigs(p, j, comp.Space, mR, rng)
			batch, err := p.Collector().MeasureComponents(p.context(), j, cfgs)
			if err != nil {
				return nil, fmt.Errorf("tuner: measure component %s: %w", comp.Name, err)
			}
			samples = append(samples, batch...)
			newSamples[j] = append(newSamples[j], batch...)
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("tuner: component %s has no measurements (mR=0 and no history)", comp.Name)
		}
		fits = append(fits, pendingFit{j: j, samples: samples})
	}

	// Pass 2: independent per-component model fits fan across the engine —
	// each writes only its own slot, and errors are surfaced in component
	// order, so results and failure behavior match the serial loop.
	params := p.surrogateParams()
	models := make([]acm.Predictor, len(fits))
	errs := make([]error, len(fits))
	p.engine().Tasks(len(fits), func(i int) {
		models[i], errs[i] = fitComponentModel(p.Components[fits[i].j], fits[i].samples, params)
	})
	for i, pf := range fits {
		j := pf.j
		comp := p.Components[j]
		if errs[i] != nil {
			return nil, fmt.Errorf("tuner: fit component model %s: %w", comp.Name, errs[i])
		}
		sub := func(cfg cfgspace.Config) []float64 {
			return comp.features(cfgspace.Slice(cfg, dims, j))
		}
		part := acm.Part{Name: comp.Name, Predictor: models[i], Extract: sub}
		if comp.Cores != nil {
			comp := comp
			part.Cores = func(cfg cfgspace.Config) float64 {
				return comp.Cores(cfgspace.Slice(cfg, dims, j))
			}
		}
		parts[j] = part
	}
	return &componentModels{
		lowFi:      &acm.LowFidelity{Combine: p.Combiner, Parts: parts},
		newSamples: newSamples,
	}, nil
}

// sampleComponentConfigs draws mR distinct component configurations, from
// the component candidate pool when one is provided, else from the space.
func sampleComponentConfigs(p *Problem, j int, space *cfgspace.Space, mR int, rng *rand.Rand) []cfgspace.Config {
	if len(p.ComponentPool) == len(p.Components) && len(p.ComponentPool[j]) > 0 {
		pool := p.ComponentPool[j]
		if mR > len(pool) {
			mR = len(pool)
		}
		idx := rng.Perm(len(pool))[:mR]
		out := make([]cfgspace.Config, mR)
		for i, k := range idx {
			out[i] = pool[k]
		}
		return out
	}
	return space.SampleN(rng, mR)
}

// componentModel adapts a log-target boosted tree to acm.Predictor.
type componentModel struct {
	model *xgb.Model
}

func (c componentModel) Predict(x []float64) float64 {
	return unlogTarget(c.model.Predict(x))
}

func fitComponentModel(comp ComponentInfo, samples []Sample, params xgb.Params) (acm.Predictor, error) {
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = comp.features(s.Cfg)
		y[i] = logTarget(s.Value)
	}
	m, err := xgb.Fit(X, y, params)
	if err != nil {
		return nil, err
	}
	return componentModel{model: m}, nil
}
