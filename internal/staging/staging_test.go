package staging

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ceal/internal/fabric"
	"ceal/internal/sim"
)

func TestNewPlan(t *testing.T) {
	cases := []struct {
		payload, chunk float64
		perStep        int
		last           float64
	}{
		{100e6, 40e6, 3, 20e6},
		{100e6, 100e6, 1, 100e6},
		{100e6, 0, 1, 100e6},
		{100e6, 150e6, 1, 100e6},
		{0, 10, 0, 0},
		{99, 33, 3, 33},
	}
	for _, c := range cases {
		p := NewPlan(c.payload, c.chunk)
		if p.PerStep != c.perStep {
			t.Errorf("NewPlan(%v,%v).PerStep = %d, want %d", c.payload, c.chunk, p.PerStep, c.perStep)
		}
		if math.Abs(p.LastBytes-c.last) > 1e-6 {
			t.Errorf("NewPlan(%v,%v).LastBytes = %v, want %v", c.payload, c.chunk, p.LastBytes, c.last)
		}
	}
}

func TestPlanChunksSumToPayloadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		payload := 1 + rng.Float64()*1e9
		chunk := 1 + rng.Float64()*1e8
		p := NewPlan(payload, chunk)
		sum := 0.0
		for i := 0; i < p.PerStep; i++ {
			size := p.Size(i)
			if size <= 0 {
				return false
			}
			sum += size
		}
		return math.Abs(sum-payload) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	link := fabric.NewLink(e, "core", 1e9)
	plan := NewPlan(10e6, 4e6) // 3 chunks per step
	ch := NewChannel(e, plan, 1e9, 0)
	const steps = 5
	ch.StartDaemon(e, "daemon", link, steps, 1e-6)

	var prodDone, consDone float64
	e.Spawn("producer", func(p *sim.Proc) {
		for s := 0; s < steps; s++ {
			p.Sleep(0.01) // compute
			ch.SendStep(p, func(b float64) float64 { return 1e-3 })
		}
		prodDone = p.Now()
	})
	e.Spawn("consumer", func(p *sim.Proc) {
		for s := 0; s < steps; s++ {
			ch.RecvStep(p, func(b float64) float64 { return 0.5e-3 })
			p.Sleep(0.02)
		}
		consDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if prodDone <= 0 || consDone <= prodDone {
		t.Fatalf("pipeline times wrong: producer %v, consumer %v", prodDone, consDone)
	}
	if ch.Buffered() != 0 {
		t.Fatalf("channel not drained: %d chunks left", ch.Buffered())
	}
	// All bytes crossed the link.
	if math.Abs(link.BytesCarried()-steps*10e6) > 1 {
		t.Fatalf("link carried %v bytes, want %v", link.BytesCarried(), steps*10e6)
	}
}

func TestChannelBackpressure(t *testing.T) {
	run := func(consumerStep float64) float64 {
		e := sim.NewEngine()
		link := fabric.NewLink(e, "core", 1e12)
		ch := NewChannel(e, NewPlan(1e6, 0), 1e12, 0)
		const steps = 20
		ch.StartDaemon(e, "daemon", link, steps, 0)
		var prodDone float64
		e.Spawn("producer", func(p *sim.Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(0.001)
				ch.SendStep(p, nil)
			}
			prodDone = p.Now()
		})
		e.Spawn("consumer", func(p *sim.Proc) {
			for s := 0; s < steps; s++ {
				ch.RecvStep(p, nil)
				p.Sleep(consumerStep)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return prodDone
	}
	fast := run(0.0001)
	slow := run(0.1)
	if slow < fast*10 {
		t.Fatalf("backpressure missing: producer finished at %v (slow consumer) vs %v (fast)", slow, fast)
	}
}

func TestChannelDefaultSlots(t *testing.T) {
	e := sim.NewEngine()
	ch := NewChannel(e, NewPlan(1, 0), 1, -5)
	// Producer can buffer DefaultSlots chunks without a consumer...
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < DefaultSlots; i++ {
			ch.SendStep(p, nil)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("filling %d slots should not block forever: %v", DefaultSlots, err)
	}
	// ...but one more chunk deadlocks without a daemon.
	e2 := sim.NewEngine()
	ch2 := NewChannel(e2, NewPlan(1, 0), 1, 0)
	e2.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i <= DefaultSlots; i++ {
			ch2.SendStep(p, nil)
		}
	})
	if err := e2.Run(); err == nil {
		t.Fatal("overfilling the send queue without a daemon should deadlock")
	}
}
