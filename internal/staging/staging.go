// Package staging models the ADIOS-class coupling layer between in-situ
// workflow components: a bounded, chunked streaming channel with
// backpressure. A producer emits each step's payload as staging chunks
// into a bounded send queue; a staging daemon moves chunks over the shared
// fabric; the consumer drains a bounded receive queue. When the consumer
// falls behind, the queues fill and the producer blocks — the run-time
// synchronization that makes in-situ workflow performance hard to predict
// from solo runs (§2.3).
package staging

import (
	"math"

	"ceal/internal/fabric"
	"ceal/internal/sim"
)

// Plan describes how one step's payload is split into staging chunks.
type Plan struct {
	PerStep   int     // chunks per step (>= 1 for producing components)
	Bytes     float64 // size of every chunk but the last
	LastBytes float64 // size of the final (possibly short) chunk
}

// NewPlan splits a per-step payload into chunks of at most chunkBytes
// (chunkBytes <= 0 means the whole payload moves as one chunk).
func NewPlan(payloadBytes, chunkBytes float64) Plan {
	if payloadBytes <= 0 {
		return Plan{}
	}
	if chunkBytes <= 0 || chunkBytes >= payloadBytes {
		return Plan{PerStep: 1, Bytes: payloadBytes, LastBytes: payloadBytes}
	}
	n := int(math.Ceil(payloadBytes / chunkBytes))
	return Plan{
		PerStep:   n,
		Bytes:     chunkBytes,
		LastBytes: payloadBytes - float64(n-1)*chunkBytes,
	}
}

// Size returns the size of chunk i (0-based) within a step.
func (p Plan) Size(i int) float64 {
	if p.PerStep <= 1 || i == p.PerStep-1 {
		return p.LastBytes
	}
	return p.Bytes
}

// Channel is one coupling stream between a producer and a consumer.
type Channel struct {
	Plan    Plan
	RateCap float64 // per-flow bandwidth cap (endpoint injection limit)

	sendQ *sim.Store
	recvQ *sim.Store
}

// DefaultSlots is the channel depth in chunks on each side (double
// buffering, matching typical staging-library defaults).
const DefaultSlots = 2

// NewChannel creates a channel with the given chunk plan and per-flow rate
// cap, using slots chunk buffers on each side (<= 0 selects DefaultSlots).
func NewChannel(e *sim.Engine, plan Plan, rateCap float64, slots int) *Channel {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Channel{
		Plan:    plan,
		RateCap: rateCap,
		sendQ:   sim.NewStore(e, slots),
		recvQ:   sim.NewStore(e, slots),
	}
}

// StartDaemon spawns the staging daemon process that moves chunks from the
// send queue over the link into the receive queue, for steps steps.
func (c *Channel) StartDaemon(e *sim.Engine, name string, link *fabric.Link, steps int, latency float64) {
	total := steps * c.Plan.PerStep
	e.Spawn(name, func(p *sim.Proc) {
		for k := 0; k < total; k++ {
			bytes := c.sendQ.Get(p).(float64)
			link.Transfer(p, bytes, c.RateCap, latency)
			c.recvQ.Put(p, bytes)
		}
	})
}

// SendStep emits one step's payload chunk by chunk, paying emitCost per
// chunk on the producer side, blocking under backpressure.
func (c *Channel) SendStep(p *sim.Proc, emitCost func(bytes float64) float64) {
	for k := 0; k < c.Plan.PerStep; k++ {
		bytes := c.Plan.Size(k)
		if emitCost != nil {
			p.Sleep(emitCost(bytes))
		}
		c.sendQ.Put(p, bytes)
	}
}

// RecvStep drains one step's payload chunk by chunk, paying ingestCost per
// chunk on the consumer side, blocking until data arrives.
func (c *Channel) RecvStep(p *sim.Proc, ingestCost func(bytes float64) float64) {
	for k := 0; k < c.Plan.PerStep; k++ {
		bytes := c.recvQ.Get(p).(float64)
		if ingestCost != nil {
			p.Sleep(ingestCost(bytes))
		}
	}
}

// Buffered returns the number of chunks currently queued on both sides
// (not counting one possibly in flight on the fabric).
func (c *Channel) Buffered() int { return c.sendQ.Len() + c.recvQ.Len() }
