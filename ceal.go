// Package ceal is an auto-tuner for in-situ scientific workflows,
// reproducing "Bootstrapping In-situ Workflow Auto-Tuning via Combining
// Performance Models of Component Applications" (Shu et al., SC '21).
//
// The package couples three layers:
//
//   - a deterministic cluster and in-situ workflow simulator (the
//     measurement substrate, substituting for the paper's 600-node
//     testbed) with the paper's three benchmark workflows — LV (LAMMPS +
//     Voro++), HS (Heat Transfer + Stage Write) and GP (Gray-Scott + PDF
//     calculator + two serial plotters);
//   - a from-scratch ML stack (gradient-boosted trees, random forests,
//     kNN, ridge regression) standing in for xgboost;
//   - the auto-tuning algorithms: CEAL (the paper's contribution) plus the
//     RS, AL, GEIST, ALpH baselines and the BO/HyBoost/KNNSelect
//     extensions.
//
// Quickstart:
//
//	machine := ceal.DefaultMachine()
//	bench := ceal.BenchmarkLV(machine)
//	problem := ceal.NewProblem(bench, ceal.CompTime, 2000, 1)
//	result, err := ceal.NewCEAL().Tune(problem, 50)
//
// The experiment harness that regenerates the paper's tables and figures
// lives behind ceal.Experiments / cmd/paperexp.
package ceal

import (
	"ceal/internal/apps"
	"ceal/internal/cfgspace"
	"ceal/internal/cluster"
	"ceal/internal/collector"
	"ceal/internal/live"
	"ceal/internal/paperexp"
	"ceal/internal/service"
	"ceal/internal/tuner"
	"ceal/internal/tuner/events"
	"ceal/internal/workflow"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Machine describes the simulated HPC system.
	Machine = cluster.Machine
	// Config is a concrete configuration (one value per parameter).
	Config = cfgspace.Config
	// Space is a configuration parameter space.
	Space = cfgspace.Space
	// Param is one integer configuration parameter.
	Param = cfgspace.Param
	// Benchmark is a target workflow with its spaces and builders.
	Benchmark = workflow.Benchmark
	// Workflow is a configured in-situ workflow instance.
	Workflow = workflow.Workflow
	// Measurement is the outcome of one simulated run.
	Measurement = workflow.Measurement
	// Problem is a fully specified auto-tuning task.
	Problem = tuner.Problem
	// Result is an auto-tuning outcome.
	Result = tuner.Result
	// Sample is one measured configuration.
	Sample = tuner.Sample
	// Algorithm is an auto-tuning algorithm under a measurement budget.
	Algorithm = tuner.Algorithm
	// Objective selects the optimization metric.
	Objective = paperexp.Objective
	// GroundTruth is a pre-measured experiment dataset.
	GroundTruth = paperexp.GroundTruth
	// Component is one configured component application instance.
	Component = apps.Component
	// Layout is a component's process layout (procs, ppn, threads).
	Layout = apps.Layout
	// Edge is a streaming data dependency between workflow components.
	Edge = workflow.Edge
	// ComponentSpec describes a component of a custom benchmark.
	ComponentSpec = workflow.ComponentSpec
	// NamedSpace pairs a component name with its space for ConcatSpaces.
	NamedSpace = cfgspace.NamedSpace
	// Collector is the unified measurement layer every algorithm measures
	// through: a caching, deduplicating batch front-end over an Evaluator
	// and a worker pool. Obtain a problem's collector with
	// Problem.Collector(); inspect cache behaviour with Collector.Stats().
	Collector = collector.Collector
	// Stats is a snapshot of a Collector's hit/miss/retry counters.
	Stats = collector.Stats
	// Evaluator measures configurations (implemented by LiveEvaluator and
	// the experiment harness's ground-truth lookup).
	Evaluator = collector.Evaluator
	// Event is one step of a tuning run's structured trace (see the
	// concrete types in internal/tuner/events: RunStarted, BatchSelected,
	// BatchMeasured, ModelTrained, SwitchDecision, BiasEscape,
	// IterationDone, RunFinished).
	Event = events.Event
	// Observer receives a tuning run's event stream. Attach one via
	// Problem.Observer; nil (the default) is a zero-cost no-op and never
	// changes results.
	Observer = events.Observer
	// Recorder is an Observer that retains every event in arrival order.
	Recorder = events.Recorder
	// JSONLWriter is an Observer that streams events as JSON lines
	// (cmd/ceal-tune's -trace format).
	JSONLWriter = events.JSONLWriter
	// JobSpec is a tuning job submitted to the serving layer (cmd/ceal-serve's
	// POST /v1/runs body): benchmark, algorithm, objective, budget, pool, seed.
	JobSpec = service.JobSpec
	// RunRecord is the serving layer's view of one submitted job: spec,
	// lifecycle state, result and persisted event trace.
	RunRecord = service.RunRecord
	// RunState is a RunRecord's lifecycle state (queued, running, done,
	// failed, cancelled).
	RunState = service.RunState
	// Store persists finished tuning runs — the queryable history database
	// (internal/histdb) behind the serving layer and warm starts (see
	// service.NewMemStore / service.OpenFileStore).
	Store = service.Store
	// WarmStart carries prior-run measurements into a new run: workflow
	// samples seed the Phase-2 surrogate, component samples feed Phase-1.
	// Attach via Problem.Warm, or assemble one from a Store with
	// WarmFromHistory.
	WarmStart = tuner.WarmStart
	// Continuous is the online-retuning driver: tune once through a
	// time-varying (drift) environment, then monitor the incumbent and
	// retune on confirmed platform drift. Assemble one with NewContinuous.
	Continuous = tuner.Continuous
	// ContinuousOptions tunes a Continuous run's monitoring cadence,
	// drift detector, and re-exploration budget.
	ContinuousOptions = tuner.ContinuousOptions
	// ContinuousResult is a Continuous run's outcome: probe/retune counts,
	// reconvergence epochs, and time-weighted cumulative regret.
	ContinuousResult = tuner.ContinuousResult
	// Load is an instantaneous platform condition (fabric, PFS, and
	// memory-bandwidth contention, compute slowdown, latency inflation).
	Load = cluster.Load
	// LoadProfile reports the platform condition as a deterministic
	// function of virtual time — the drift a Continuous run experiences.
	LoadProfile = cluster.Profile
)

// WarmFromHistory assembles transfer-learning data for a spec from the
// history database: same-spec-family workflow samples plus standalone
// component samples from any run sharing a component application. Returns
// nil when the database has nothing applicable (cold start).
var WarmFromHistory = live.WarmFromHistory

// Space construction helpers for custom workflows.
var (
	// NewParam returns an integer parameter with stride 1.
	NewParam = cfgspace.NewParam
	// NewSteppedParam returns an integer parameter with a custom stride.
	NewSteppedParam = cfgspace.NewSteppedParam
	// ConcatSpaces builds a workflow space from component subspaces and an
	// optional joint constraint.
	ConcatSpaces = cfgspace.Concat
	// NodesFor returns ceil(procs/ppn), the nodes a layout occupies.
	NodesFor = cluster.NodesFor
	// RunSolo executes a single component alone against the file system.
	RunSolo = workflow.RunSolo
	// NewRecorder returns an empty event Recorder.
	NewRecorder = events.NewRecorder
	// NewJSONLWriter returns an event observer that writes one JSON object
	// per event to w.
	NewJSONLWriter = events.NewJSONLWriter
	// MultiObserver fans one event stream out to several observers.
	MultiObserver = events.Multi
)

// Optimization objectives.
const (
	// ExecTime minimizes wall-clock execution time.
	ExecTime = paperexp.ExecTime
	// CompTime minimizes consumed core-hours.
	CompTime = paperexp.CompTime
	// Energy minimizes consumed kilojoules (extension, §4).
	Energy = paperexp.Energy
)

// DefaultMachine returns the paper-testbed machine model: 600 Broadwell
// nodes, 36 cores each, 32-node allocation cap.
func DefaultMachine() Machine { return cluster.Default() }

// BenchmarkLV returns the LAMMPS + Voro++ workflow (§7.1).
func BenchmarkLV(m Machine) *Benchmark { return workflow.LV(m) }

// BenchmarkHS returns the Heat Transfer + Stage Write workflow (§7.1).
func BenchmarkHS(m Machine) *Benchmark { return workflow.HS(m) }

// BenchmarkGP returns the Gray-Scott + PDF + plotters workflow (§7.1).
func BenchmarkGP(m Machine) *Benchmark { return workflow.GP(m) }

// BenchmarkByName returns "LV", "HS" or "GP".
func BenchmarkByName(m Machine, name string) (*Benchmark, error) {
	return workflow.ByName(m, name)
}

// Algorithm constructors (defaults tuned per DESIGN.md).
var (
	// NewCEAL returns the paper's Component-based Ensemble Active Learning.
	NewCEAL = tuner.NewCEAL
	// NewAL returns batch active learning.
	NewAL = tuner.NewAL
	// NewGEIST returns the graph-guided semi-supervised sampler.
	NewGEIST = tuner.NewGEIST
	// NewALpH returns active learning over a learned combining model.
	NewALpH = tuner.NewALpH
	// NewBO returns the Bayesian-optimization extension.
	NewBO = tuner.NewBO
	// NewHyBoost returns the residual-boosting white+black ensemble.
	NewHyBoost = tuner.NewHyBoost
	// NewKNNSelect returns the per-query model-selection ensemble.
	NewKNNSelect = tuner.NewKNNSelect
)

// NewRS returns the random-sampling baseline.
func NewRS() Algorithm { return tuner.RS{} }

// AlgorithmByName maps a name (rs, al, geist, alph, ceal, bo, hyboost,
// knnselect) to a fresh algorithm instance with default options.
func AlgorithmByName(name string) (Algorithm, error) { return live.AlgorithmByName(name) }

// ObjectiveByName maps a short objective name (exec, comp, energy) to its
// Objective.
func ObjectiveByName(name string) (Objective, error) { return live.ParseObjective(name) }

// ProfileNames lists the built-in platform drift profiles (none, step,
// ramp, periodic, neighbor, nodeslow).
func ProfileNames() []string { return cluster.ProfileNames() }

// ParseProfile builds a named drift profile with onsets and magnitudes
// jittered deterministically from seed.
func ParseProfile(name string, seed uint64) (LoadProfile, error) {
	return cluster.ParseProfile(name, seed)
}

// NewContinuous assembles a continuous (online-retuning) run over a
// benchmark: per-epoch problems built exactly like NewProblem, a drift
// environment following the named load profile along a virtual clock, and
// regret accounting against the pool's per-condition best. Set Algorithm
// (e.g. NewCEAL()) and optionally adjust Opts before calling Run.
func NewContinuous(b *Benchmark, obj Objective, poolSize int, seed uint64, profile string, workers int) (*Continuous, error) {
	return live.NewContinuous(b, obj, poolSize, seed, profile, workers)
}

// LiveEvaluator measures configurations by actually running the cluster
// simulator (as opposed to the experiment harness's pre-measured pools).
// Noise is keyed to the configuration so repeated measurements of the same
// configuration are reproducible.
type LiveEvaluator = live.Evaluator

// NewProblem assembles a live auto-tuning problem over a benchmark: a
// candidate pool of poolSize random valid configurations, evaluated by
// running the simulator on demand through the problem's caching Collector
// (set Problem.Runner for parallel measurement, Problem.Ctx for
// cancellation). Use GroundTruth/Experiments for the paper's pre-measured
// evaluation methodology instead.
func NewProblem(b *Benchmark, obj Objective, poolSize int, seed uint64) *Problem {
	return live.NewProblem(b, obj, poolSize, seed)
}

// BuildGroundTruth pre-measures a benchmark for the paper's experiment
// methodology (see cmd/paperexp).
var BuildGroundTruth = paperexp.BuildGroundTruth

// Experiments returns the paper's tables/figures as runnable experiments.
var Experiments = paperexp.All
