// Quickstart: auto-tune the LV workflow's computer time with CEAL and
// compare the result against the expert-recommended configuration.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ceal"
)

func main() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkLV(machine)

	// A tuning problem over 1000 candidate configurations, measured by
	// running the cluster simulator on demand.
	problem := ceal.NewProblem(bench, ceal.CompTime, 1000, 42)

	// CEAL under a tight budget: 50 workflow-run equivalents, part of
	// which it spends measuring LAMMPS and Voro++ standalone to bootstrap
	// its low-fidelity model.
	result, err := ceal.NewCEAL().Tune(problem, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Verify through the problem's caching collector: result.Best was
	// measured during tuning, so it returns as a cache hit.
	verify, err := problem.Collector().MeasureWorkflows(context.Background(),
		[]ceal.Config{result.Best, bench.ExpertComp})
	if err != nil {
		log.Fatal(err)
	}
	tuned, expert := verify[0].Value, verify[1].Value

	fmt.Printf("tuned configuration  %v -> %.3f core-hours\n", result.Best, tuned)
	fmt.Printf("expert configuration %v -> %.3f core-hours\n", bench.ExpertComp, expert)
	if expert > tuned {
		fmt.Printf("improvement: %.1f%%; data collection cost %.1f core-hours recouped after %.0f runs\n",
			(1-tuned/expert)*100, result.CollectionCost, result.CollectionCost/(expert-tuned))
	}
}
