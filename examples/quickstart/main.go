// Quickstart: auto-tune the LV workflow's computer time with CEAL and
// compare the result against the expert-recommended configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ceal"
)

func main() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkLV(machine)

	// A tuning problem over 1000 candidate configurations, measured by
	// running the cluster simulator on demand.
	problem := ceal.NewProblem(bench, ceal.CompTime, 1000, 42)

	// CEAL under a tight budget: 50 workflow-run equivalents, part of
	// which it spends measuring LAMMPS and Voro++ standalone to bootstrap
	// its low-fidelity model.
	result, err := ceal.NewCEAL().Tune(problem, 50)
	if err != nil {
		log.Fatal(err)
	}

	eval := &ceal.LiveEvaluator{Bench: bench, Obj: ceal.CompTime, Seed: 42}
	tuned, err := eval.MeasureWorkflow(result.Best)
	if err != nil {
		log.Fatal(err)
	}
	expert, err := eval.MeasureWorkflow(bench.ExpertComp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned configuration  %v -> %.3f core-hours\n", result.Best, tuned)
	fmt.Printf("expert configuration %v -> %.3f core-hours\n", bench.ExpertComp, expert)
	if expert > tuned {
		fmt.Printf("improvement: %.1f%%; data collection cost %.1f core-hours recouped after %.0f runs\n",
			(1-tuned/expert)*100, result.CollectionCost, result.CollectionCost/(expert-tuned))
	}
}
