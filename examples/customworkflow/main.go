// Custom workflow: build a brand-new two-component in-situ workflow — a
// spectral "turbulence" solver streaming snapshots to an "eddy census"
// analyzer — on top of the public API, then auto-tune it with CEAL. This
// is the downstream-adoption path: everything here uses only the ceal
// package.
//
//	go run ./examples/customworkflow
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"ceal"
)

const (
	steps         = 40
	snapshotBytes = 64e6 // one spectral snapshot per coupling step
)

// solver models a pseudo-spectral solver: heavy compute, log-p transpose
// communication, memory-bandwidth hungry.
func solver(m ceal.Machine, procs, ppn int) *ceal.Component {
	l := ceal.Layout{Procs: procs, PPN: ppn, Threads: 1}
	work := 160.0 // core-seconds per step
	comm := 0.02*math.Log2(float64(procs)) + 0.001*math.Sqrt(float64(procs))
	demand := float64(min(ppn, procs)) * 5e9
	memFactor := math.Max(1, demand/m.MemBWPerNode)
	t := work/float64(procs)*memFactor + comm
	return &ceal.Component{
		Name:     "turbsolver",
		Layout:   l,
		Steps:    steps,
		StepTime: func(int) float64 { return t },
		OutBytes: snapshotBytes,
		EmitPerChunk: func(b float64) float64 {
			return 1e-3 + b/(m.MemBWPerNode/4)
		},
	}
}

// census models the analyzer: lighter, latency-bound at scale.
func census(m ceal.Machine, procs, ppn int) *ceal.Component {
	l := ceal.Layout{Procs: procs, PPN: ppn, Threads: 1}
	work := 45.0
	comm := 0.01 * math.Log2(float64(procs))
	t := work/float64(procs) + comm
	return &ceal.Component{
		Name:     "eddycensus",
		Layout:   l,
		Steps:    steps,
		StepTime: func(int) float64 { return t },
		IngestPerChunk: func(b float64) float64 {
			return 0.5e-3 + b/(m.MemBWPerNode/4)
		},
	}
}

func main() {
	machine := ceal.DefaultMachine()

	// Each component's own space: procs and ppn, capped at 24 nodes.
	mkSpace := func() *ceal.Space {
		return &ceal.Space{
			Params: []ceal.Param{
				ceal.NewParam("procs", 2, 840),
				ceal.NewParam("ppn", 1, 35),
			},
			Valid: func(c ceal.Config) bool { return ceal.NodesFor(c[0], c[1]) <= 24 },
		}
	}
	solverSpace, censusSpace := mkSpace(), mkSpace()

	bench := &ceal.Benchmark{
		Name:    "TURB",
		Machine: machine,
		Components: []ceal.ComponentSpec{
			{
				Name:      "turbsolver",
				Space:     solverSpace,
				BuildSolo: func(cfg ceal.Config) *ceal.Component { return solver(machine, cfg[0], cfg[1]) },
			},
			{
				Name:           "eddycensus",
				Space:          censusSpace,
				BuildSolo:      func(cfg ceal.Config) *ceal.Component { return census(machine, cfg[0], cfg[1]) },
				InBytesPerStep: snapshotBytes,
			},
		},
		Space: ceal.ConcatSpaces(
			func(c ceal.Config) bool {
				return ceal.NodesFor(c[0], c[1])+ceal.NodesFor(c[2], c[3]) <= machine.MaxAllocNodes
			},
			ceal.NamedSpace{Name: "turbsolver", Space: solverSpace},
			ceal.NamedSpace{Name: "eddycensus", Space: censusSpace},
		),
		// No expert exists for a new workflow; use a plausible hand guess.
		ExpertExec: ceal.Config{420, 35, 210, 35},
		ExpertComp: ceal.Config{70, 35, 35, 35},
	}
	bench.Build = func(cfg ceal.Config) (*ceal.Workflow, error) {
		if !bench.Space.IsValid(cfg) {
			return nil, fmt.Errorf("invalid configuration %v", cfg)
		}
		return &ceal.Workflow{
			Name:    "TURB",
			Machine: machine,
			Components: []*ceal.Component{
				solver(machine, cfg[0], cfg[1]),
				census(machine, cfg[2], cfg[3]),
			},
			Edges: []ceal.Edge{{From: 0, To: 1}},
		}, nil
	}

	// Sanity: run the hand guess in-situ and solo.
	w, err := bench.Build(bench.ExpertComp)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := w.RunInSitu()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand guess %v: exec %.2f s, computer %.3f core-h\n",
		bench.ExpertComp, meas.ExecTime, meas.CompTime)
	solo, err := ceal.RunSolo(machine, solver(machine, 70, 35), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver solo at (70,35): exec %.2f s (vs %.2f s coupled — the gap is what CEAL's\n",
		solo.ExecTime, meas.PerComponent[0])
	fmt.Println("  low-fidelity model tolerates and its high-fidelity model learns)")

	// Auto-tune computer time with CEAL.
	problem := ceal.NewProblem(bench, ceal.CompTime, 800, 3)
	res, err := ceal.NewCEAL().Tune(problem, 40)
	if err != nil {
		log.Fatal(err)
	}
	verify, err := problem.Collector().MeasureWorkflows(context.Background(),
		[]ceal.Config{res.Best, bench.ExpertComp})
	if err != nil {
		log.Fatal(err)
	}
	tuned, guess := verify[0].Value, verify[1].Value
	fmt.Printf("\nCEAL (40-run budget) recommends %v -> %.3f core-h\n", res.Best, tuned)
	fmt.Printf("hand guess: %.3f core-h; improvement %.1f%%\n", guess, (1-tuned/guess)*100)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
