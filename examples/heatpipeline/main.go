// Heat pipeline: the HS workflow (Heat Transfer streaming state to Stage
// Write) is the paper's model of numerical PDE output forwarding (§7.1).
// This example explores the in-situ coupling behaviour the auto-tuner must
// navigate:
//
//  1. staging-buffer size — small buffers pay per-chunk rendezvous costs;
//
//  2. in-situ vs post-hoc — why streaming beats going through the file
//     system (the motivation of §2.1, Fig. 2);
//
//  3. consumer sizing — an undersized Stage Write backpressures the
//     simulation.
//
//     go run ./examples/heatpipeline
package main

import (
	"fmt"
	"log"

	"ceal"
)

func main() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkHS(machine)

	// HS configuration: [procsX, procsY, ppn, outputs, bufferMB, swProcs, swPPN].
	base := ceal.Config{16, 16, 16, 16, 20, 32, 8}

	fmt.Println("1) staging buffer size vs execution time (16x16 heat, 16 outputs)")
	for _, bufMB := range []int{1, 2, 5, 10, 20, 40} {
		cfg := base.Clone()
		cfg[4] = bufMB
		meas := measure(bench, cfg)
		fmt.Printf("   buffer %2d MB: exec %7.3f s, computer %6.4f core-h\n",
			bufMB, meas.ExecTime, meas.CompTime)
	}

	fmt.Println("\n2) coupling styles: loosely-coupled staging vs tightly-coupled vs post-hoc files")
	w, err := bench.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	insitu, err := w.RunInSitu()
	if err != nil {
		log.Fatal(err)
	}
	tight, err := w.RunTightlyCoupled()
	if err != nil {
		log.Fatal(err)
	}
	posthoc, err := w.RunPostHoc()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   loose (staged): exec %7.3f s, %6.3f core-h (pipelined, 2 allocations)\n", insitu.ExecTime, insitu.CompTime)
	fmt.Printf("   tight (linked): exec %7.3f s, %6.3f core-h (serialized, shared allocation)\n", tight.ExecTime, tight.CompTime)
	fmt.Printf("   post-hoc files: exec %7.3f s (%.1fx slower end-to-end)\n",
		posthoc.ExecTime, posthoc.ExecTime/insitu.ExecTime)

	fmt.Println("\n3) Stage Write sizing: an undersized consumer stalls the simulation")
	for _, swProcs := range []int{2, 8, 32, 128} {
		cfg := base.Clone()
		cfg[5] = swProcs
		meas := measure(bench, cfg)
		fmt.Printf("   stage write %3d procs: heat wall %7.3f s, workflow exec %7.3f s\n",
			swProcs, meas.PerComponent[0], meas.ExecTime)
	}

	fmt.Println("\n4) auto-tune the whole space with CEAL (execution time, 50 runs)")
	problem := ceal.NewProblem(bench, ceal.ExecTime, 1000, 7)
	res, err := ceal.NewCEAL().Tune(problem, 50)
	if err != nil {
		log.Fatal(err)
	}
	meas := measure(bench, res.Best)
	fmt.Printf("   tuned %v -> exec %.3f s (expert: %.3f s)\n",
		res.Best, meas.ExecTime, measure(bench, bench.ExpertExec).ExecTime)
}

func measure(bench *ceal.Benchmark, cfg ceal.Config) ceal.Measurement {
	w, err := bench.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := w.RunInSitu()
	if err != nil {
		log.Fatal(err)
	}
	return meas
}
