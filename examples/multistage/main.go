// Multistage: the GP workflow couples four components — Gray-Scott
// streams to both a PDF calculator and the serial G-Plot visualizer, and
// the PDF stream feeds the serial P-Plot (§7.1). Because G-Plot is an
// unconfigurable serial bottleneck (97 s alone), many configurations tie
// on execution time while computer time varies enormously with allocation
// size — the regime where the paper notes expert recommendations do fine
// on execution time, and where tuning computer time pays.
//
//	go run ./examples/multistage
package main

import (
	"context"
	"fmt"
	"log"

	"ceal"
)

func main() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkGP(machine)

	// GP configuration: [gsProcs, gsPPN, pdfProcs, pdfPPN].
	fmt.Println("1) the serial G-Plot pins execution time; allocations only move cost")
	for _, cfg := range []ceal.Config{
		{35, 35, 35, 35},   // 4 nodes
		{105, 35, 35, 35},  // 6 nodes
		{350, 35, 105, 35}, // 15 nodes
		{700, 35, 210, 35}, // 28 nodes
	} {
		w, err := bench.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := w.RunInSitu()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-18v %2d nodes: exec %7.2f s, computer %7.3f core-h\n",
			cfg, w.TotalNodes(), meas.ExecTime, meas.CompTime)
	}

	fmt.Println("\n2) per-component wall times at a balanced configuration")
	w, err := bench.Build(ceal.Config{70, 35, 35, 35})
	if err != nil {
		log.Fatal(err)
	}
	meas, err := w.RunInSitu()
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range w.Components {
		fmt.Printf("   %-10s %7.2f s on %d node(s)\n", c.Name, meas.PerComponent[i], c.Nodes())
	}

	fmt.Println("\n3) tuning computer time with CEAL vs the expert recommendation")
	problem := ceal.NewProblem(bench, ceal.CompTime, 1000, 11)
	res, err := ceal.NewCEAL().Tune(problem, 50)
	if err != nil {
		log.Fatal(err)
	}
	verify, err := problem.Collector().MeasureWorkflows(context.Background(),
		[]ceal.Config{res.Best, bench.ExpertComp})
	if err != nil {
		log.Fatal(err)
	}
	tuned, expert := verify[0].Value, verify[1].Value
	fmt.Printf("   tuned  %v -> %.3f core-h\n", res.Best, tuned)
	fmt.Printf("   expert %v -> %.3f core-h\n", bench.ExpertComp, expert)
	fmt.Println("   (the paper's Table 2 note: GP experts are hard to beat, since the")
	fmt.Println("    bottleneck is unconfigurable — matching it with minimal nodes is the game)")
}
