package ceal_test

import (
	"fmt"

	"ceal"
)

// Example tunes the LV workflow's computer time with CEAL over a small
// candidate pool and prints whether the recommendation is valid.
func Example() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkLV(machine)
	problem := ceal.NewProblem(bench, ceal.CompTime, 200, 7)

	result, err := ceal.NewCEAL().Tune(problem, 20)
	if err != nil {
		panic(err)
	}
	fmt.Println("valid recommendation:", bench.Space.IsValid(result.Best))
	fmt.Println("measured samples:", len(result.Samples) > 0)
	// Output:
	// valid recommendation: true
	// measured samples: true
}

// ExampleWorkflow_RunInSitu runs one configuration of the HS workflow and
// shows the relation between its measured quantities.
func ExampleWorkflow_RunInSitu() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkHS(machine)
	w, err := bench.Build(ceal.Config{13, 17, 14, 4, 29, 19, 3})
	if err != nil {
		panic(err)
	}
	meas, err := w.RunInSitu()
	if err != nil {
		panic(err)
	}
	impliedCores := meas.CompTime * 3600 / meas.ExecTime
	fmt.Printf("allocation: %d nodes (%v cores)\n", w.TotalNodes(), int(impliedCores+0.5))
	fmt.Println("energy positive:", meas.EnergyKJ > 0)
	// Output:
	// allocation: 23 nodes (828 cores)
	// energy positive: true
}

// ExampleLiveEvaluator shows on-demand measurement of a configuration
// under both objectives.
func ExampleLiveEvaluator() {
	machine := ceal.DefaultMachine()
	bench := ceal.BenchmarkGP(machine)
	cfg := ceal.Config{66, 34, 41, 22}

	exec := &ceal.LiveEvaluator{Bench: bench, Obj: ceal.ExecTime, Seed: 1}
	comp := &ceal.LiveEvaluator{Bench: bench, Obj: ceal.CompTime, Seed: 1}
	e, err := exec.MeasureWorkflow(cfg)
	if err != nil {
		panic(err)
	}
	c, err := comp.MeasureWorkflow(cfg)
	if err != nil {
		panic(err)
	}
	// GP's serial G-Plot pins the makespan near 97 s.
	fmt.Println("exec near the G-Plot floor:", e > 90 && e < 110)
	fmt.Println("computer time positive:", c > 0)
	// Output:
	// exec near the G-Plot floor: true
	// computer time positive: true
}

// ExampleAlgorithmByName enumerates the available auto-tuners.
func ExampleAlgorithmByName() {
	for _, name := range []string{"rs", "al", "geist", "alph", "ceal"} {
		alg, err := ceal.AlgorithmByName(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(alg.Name())
	}
	// Output:
	// RS
	// AL
	// GEIST
	// ALpH
	// CEAL
}
