package ceal

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m := DefaultMachine()
	b := BenchmarkLV(m)
	p := NewProblem(b, CompTime, 150, 1)
	res, err := NewCEAL().Tune(p, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Space.IsValid(res.Best) {
		t.Fatalf("tuned config %v invalid", res.Best)
	}
	w, err := b.Build(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := w.RunInSitu()
	if err != nil {
		t.Fatal(err)
	}
	if meas.CompTime <= 0 {
		t.Fatalf("bad measurement %+v", meas)
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"rs", "AL", "geist", "alph", "CEAL", "bo", "hyboost", "knnselect"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg == nil {
			t.Fatalf("%s: nil algorithm", name)
		}
	}
	if _, err := AlgorithmByName("gradient-descent"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBenchmarkByName(t *testing.T) {
	m := DefaultMachine()
	for _, name := range []string{"LV", "HS", "GP"} {
		b, err := BenchmarkByName(m, name)
		if err != nil || b.Name != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := BenchmarkByName(m, "XX"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLiveEvaluatorDeterministicPerConfig(t *testing.T) {
	m := DefaultMachine()
	b := BenchmarkLV(m)
	e := &LiveEvaluator{Bench: b, Obj: ExecTime, Seed: 7}
	cfg := Config{112, 28, 1, 36, 18, 4}
	v1, err := e.MeasureWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.MeasureWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("same config measured differently: %v vs %v", v1, v2)
	}
	// Different configs (and component runs) get independent noise.
	if _, err := e.MeasureComponent(0, Config{112, 28, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MeasureComponent(9, nil); err == nil {
		t.Fatal("out-of-range component accepted")
	}
}

func TestLiveEvaluatorObjectives(t *testing.T) {
	m := DefaultMachine()
	b := BenchmarkLV(m)
	cfg := Config{112, 28, 1, 36, 18, 4}
	exec, err := (&LiveEvaluator{Bench: b, Obj: ExecTime, Seed: 7}).MeasureWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := (&LiveEvaluator{Bench: b, Obj: CompTime, Seed: 7}).MeasureWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 6 nodes * 36 cores: comp = exec * 216/3600.
	ratio := comp / exec * 3600 / 36
	if ratio < 5.9 || ratio > 6.1 {
		t.Fatalf("exec/comp relation off: implied nodes %v", ratio)
	}
}

func TestExperimentsExposed(t *testing.T) {
	if len(Experiments()) < 13 {
		t.Fatalf("only %d experiments exposed", len(Experiments()))
	}
}

func TestEnergyObjectiveFacade(t *testing.T) {
	m := DefaultMachine()
	b := BenchmarkLV(m)
	eval := &LiveEvaluator{Bench: b, Obj: Energy, Seed: 5}
	e, err := eval.MeasureWorkflow(Config{112, 28, 1, 36, 18, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatalf("energy = %v", e)
	}
	// Tuning the energy objective through the facade must work end to end.
	p := NewProblem(b, Energy, 120, 5)
	res, err := NewCEAL().Tune(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Space.IsValid(res.Best) {
		t.Fatalf("invalid best %v", res.Best)
	}
}
